// Package workload defines the multi-query workload model of the paper
// (Figure 1): a set of skyline-over-join queries over shared base tables
// R and T, each with a join condition JC_i, a projection onto the shared
// output space X via scalar mapping functions, a skyline preference P_i
// over X, a priority, and a progressiveness contract.
package workload

import (
	"fmt"

	"caqe/internal/contract"
	"caqe/internal/join"
	"caqe/internal/preference"
	"caqe/internal/skycube"
)

// MaxQueries is the hard cap on the number of queries one workload (or one
// online session) can hold: query sets are represented as 64-bit masks
// (skycube.QSet) throughout the engine. It doubles as the upper bound on a
// server's concurrent-admission cap — far above the paper's |S_Q| ≤ 11.
const MaxQueries = 64

// Priority bands of §7.1.
const (
	PriorityHighMin   = 0.7
	PriorityMediumMin = 0.4
)

// PriorityBand names the band a priority value falls into.
func PriorityBand(p float64) string {
	switch {
	case p >= PriorityHighMin:
		return "HIGH"
	case p >= PriorityMediumMin:
		return "MEDIUM"
	default:
		return "LOW"
	}
}

// Query is one skyline-over-join query SJ_{JC, F, X, P}(R, T).
type Query struct {
	Name     string
	JC       int                 // index into Workload.JoinConds
	Pref     preference.Subspace // skyline dimensions (indices into Workload.OutDims)
	Priority float64             // [0, 1]; see PriorityBand
	Contract contract.Contract   // progressiveness contract C_i

	// Standing marks a continuous query: a session keeps it open after it
	// drains the current data so base-table mutations can stream further
	// results to it. Standing queries finish only on cancellation or
	// session close. The core executor ignores the flag — done-ness stays
	// QueryDone — it is session-level lifecycle policy.
	Standing bool
}

// Workload is a set of queries over a shared output space. OutDims is the
// union of all mapping functions used by any query (the workload's
// d-dimensional output abstraction of §4); each query's preference indexes
// into it.
type Workload struct {
	JoinConds []join.EquiJoin
	OutDims   []join.MapFunc
	Queries   []Query
}

// Validate checks structural consistency.
func (w *Workload) Validate() error {
	if len(w.Queries) == 0 {
		return fmt.Errorf("workload: no queries")
	}
	if len(w.Queries) > MaxQueries {
		return fmt.Errorf("workload: %d queries exceeds the %d-query limit", len(w.Queries), MaxQueries)
	}
	if len(w.JoinConds) == 0 {
		return fmt.Errorf("workload: no join conditions")
	}
	for i, f := range w.OutDims {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("workload: output dimension %d: %w", i, err)
		}
	}
	for i, q := range w.Queries {
		if q.JC < 0 || q.JC >= len(w.JoinConds) {
			return fmt.Errorf("workload: query %s references join condition %d of %d", q.Name, q.JC, len(w.JoinConds))
		}
		if len(q.Pref) == 0 {
			return fmt.Errorf("workload: query %s has an empty skyline preference", q.Name)
		}
		for _, d := range q.Pref {
			if d < 0 || d >= len(w.OutDims) {
				return fmt.Errorf("workload: query %s preference uses output dimension %d of %d", q.Name, d, len(w.OutDims))
			}
		}
		if q.Priority < 0 || q.Priority > 1 {
			return fmt.Errorf("workload: query %s priority %g outside [0,1]", q.Name, q.Priority)
		}
		if q.Contract == nil {
			return fmt.Errorf("workload: query %s has no contract (query %d)", q.Name, i)
		}
	}
	return nil
}

// Prefs returns the per-query skyline preferences, index-aligned with
// Queries, as required by skycube.BuildCuboid.
func (w *Workload) Prefs() []preference.Subspace {
	out := make([]preference.Subspace, len(w.Queries))
	for i, q := range w.Queries {
		out[i] = q.Pref
	}
	return out
}

// QueriesWithJC returns the set of queries using join condition jc.
func (w *Workload) QueriesWithJC(jc int) skycube.QSet {
	var s skycube.QSet
	for i, q := range w.Queries {
		if q.JC == jc {
			s = s.Add(i)
		}
	}
	return s
}

// AllQueries returns the set of all query indices.
func (w *Workload) AllQueries() skycube.QSet {
	var s skycube.QSet
	for i := range w.Queries {
		s = s.Add(i)
	}
	return s
}

// ByPriority returns query indices sorted by descending priority (the
// processing order used by the non-shared baselines, §7.1), ties broken by
// index for determinism.
func (w *Workload) ByPriority() []int {
	idx := make([]int, len(w.Queries))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if w.Queries[a].Priority < w.Queries[b].Priority ||
				(w.Queries[a].Priority == w.Queries[b].Priority && a > b) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
	return idx
}
