package workload

import (
	"testing"

	"caqe/internal/contract"
	"caqe/internal/join"
	"caqe/internal/preference"
)

func c2(int) contract.Contract { return contract.C2() }

func validWorkload() *Workload {
	return &Workload{
		JoinConds: []join.EquiJoin{{Name: "JC1", LeftKey: 0, RightKey: 0}},
		OutDims:   []join.MapFunc{join.Sum("x0", 0), join.Sum("x1", 1)},
		Queries: []Query{
			{Name: "Q1", JC: 0, Pref: preference.NewSubspace(0, 1), Priority: 0.8, Contract: contract.C2()},
			{Name: "Q2", JC: 0, Pref: preference.NewSubspace(0), Priority: 0.3, Contract: contract.C2()},
		},
	}
}

func TestValidateAcceptsValid(t *testing.T) {
	if err := validWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Workload)
	}{
		{"no queries", func(w *Workload) { w.Queries = nil }},
		{"no join conds", func(w *Workload) { w.JoinConds = nil }},
		{"bad JC index", func(w *Workload) { w.Queries[0].JC = 3 }},
		{"negative JC index", func(w *Workload) { w.Queries[0].JC = -1 }},
		{"empty pref", func(w *Workload) { w.Queries[0].Pref = nil }},
		{"pref out of range", func(w *Workload) { w.Queries[0].Pref = preference.NewSubspace(5) }},
		{"priority too big", func(w *Workload) { w.Queries[0].Priority = 1.5 }},
		{"priority negative", func(w *Workload) { w.Queries[0].Priority = -0.1 }},
		{"nil contract", func(w *Workload) { w.Queries[0].Contract = nil }},
		{"bad mapping", func(w *Workload) { w.OutDims[0].LeftW = -1 }},
	}
	for _, c := range cases {
		w := validWorkload()
		c.mut(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidateAdmissionCapBoundary(t *testing.T) {
	// The session subsystem admits queries one at a time up to MaxQueries
	// (QSet is a 64-bit mask), so the boundary itself must be exact: a
	// workload of exactly MaxQueries validates, one more does not.
	w := validWorkload()
	q := w.Queries[0]
	w.Queries = nil
	for i := 0; i < MaxQueries; i++ {
		w.Queries = append(w.Queries, q)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("exactly MaxQueries queries rejected: %v", err)
	}
	w.Queries = append(w.Queries, q)
	if err := w.Validate(); err == nil {
		t.Errorf("%d queries accepted past the %d-query cap", len(w.Queries), MaxQueries)
	}
}

func TestPriorityBands(t *testing.T) {
	cases := map[float64]string{
		1.0: "HIGH", 0.7: "HIGH", 0.69: "MEDIUM", 0.4: "MEDIUM", 0.39: "LOW", 0: "LOW",
	}
	for p, want := range cases {
		if got := PriorityBand(p); got != want {
			t.Errorf("PriorityBand(%g) = %s, want %s", p, got, want)
		}
	}
}

func TestPrefs(t *testing.T) {
	w := validWorkload()
	prefs := w.Prefs()
	if len(prefs) != 2 || !prefs[0].Equal(preference.NewSubspace(0, 1)) {
		t.Fatalf("Prefs = %v", prefs)
	}
}

func TestQueriesWithJC(t *testing.T) {
	w := validWorkload()
	w.JoinConds = append(w.JoinConds, join.EquiJoin{Name: "JC2", LeftKey: 0, RightKey: 0})
	w.Queries[1].JC = 1
	if s := w.QueriesWithJC(0); !s.Has(0) || s.Has(1) {
		t.Errorf("QueriesWithJC(0) = %s", s)
	}
	if s := w.QueriesWithJC(1); s.Has(0) || !s.Has(1) {
		t.Errorf("QueriesWithJC(1) = %s", s)
	}
	if s := w.AllQueries(); s.Count() != 2 {
		t.Errorf("AllQueries = %s", s)
	}
}

func TestByPriorityDescending(t *testing.T) {
	w := validWorkload()
	w.Queries[0].Priority = 0.2
	w.Queries[1].Priority = 0.9
	order := w.ByPriority()
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("ByPriority = %v", order)
	}
	// Ties broken by query index.
	w.Queries[0].Priority = 0.5
	w.Queries[1].Priority = 0.5
	order = w.ByPriority()
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("tie break = %v", order)
	}
}

func TestEnumeratePreferencesCounts(t *testing.T) {
	// Subsets with cardinality ≥ 2 of d dims: 2^d - 1 - d.
	for d := 2; d <= 6; d++ {
		want := (1 << uint(d)) - 1 - d
		if got := len(EnumeratePreferences(d)); got != want {
			t.Errorf("d=%d: %d preferences, want %d", d, got, want)
		}
	}
}

func TestEnumeratePreferencesOrdering(t *testing.T) {
	prefs := EnumeratePreferences(4)
	// Cardinality must be non-decreasing; first six are pairs, then four
	// triples, then the full space — the paper's 11-query headline layout.
	if len(prefs) != 11 {
		t.Fatalf("d=4 yields %d preferences", len(prefs))
	}
	for i := 1; i < len(prefs); i++ {
		if len(prefs[i]) < len(prefs[i-1]) {
			t.Fatalf("cardinality decreases at %d", i)
		}
	}
	if len(prefs[5]) != 2 || len(prefs[6]) != 3 || len(prefs[10]) != 4 {
		t.Fatalf("layout wrong: %v", prefs)
	}
}

func TestBenchmarkGenerator(t *testing.T) {
	w, err := Benchmark(BenchmarkConfig{NumQueries: 11, Dims: 4, Priority: HighDimsHigh, NewContract: c2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 11 || len(w.OutDims) != 4 || len(w.JoinConds) != 1 {
		t.Fatalf("workload shape: %d queries, %d dims, %d JCs", len(w.Queries), len(w.OutDims), len(w.JoinConds))
	}
}

func TestBenchmarkErrors(t *testing.T) {
	if _, err := Benchmark(BenchmarkConfig{NumQueries: 5, Dims: 1, NewContract: c2}); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := Benchmark(BenchmarkConfig{NumQueries: 12, Dims: 4, NewContract: c2}); err == nil {
		t.Error("12 queries on d=4 accepted")
	}
	if _, err := Benchmark(BenchmarkConfig{NumQueries: 5, Dims: 4}); err == nil {
		t.Error("missing contract factory accepted")
	}
	if _, err := Benchmark(BenchmarkConfig{NumQueries: 0, Dims: 4, NewContract: c2}); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestPriorityModes(t *testing.T) {
	highDims, err := Benchmark(BenchmarkConfig{NumQueries: 11, Dims: 4, Priority: HighDimsHigh, NewContract: c2})
	if err != nil {
		t.Fatal(err)
	}
	// Under HighDimsHigh the 4-d query must out-rank every 2-d query.
	var quad, pair float64
	for _, q := range highDims.Queries {
		switch len(q.Pref) {
		case 4:
			quad = q.Priority
		case 2:
			if q.Priority > pair {
				pair = q.Priority
			}
		}
	}
	if quad <= pair {
		t.Errorf("HighDimsHigh: 4-d priority %g not above best 2-d %g", quad, pair)
	}

	lowDims, _ := Benchmark(BenchmarkConfig{NumQueries: 11, Dims: 4, Priority: LowDimsHigh, NewContract: c2})
	quad, pair = 0, 1
	for _, q := range lowDims.Queries {
		switch len(q.Pref) {
		case 4:
			quad = q.Priority
		case 2:
			if q.Priority < pair {
				pair = q.Priority
			}
		}
	}
	if quad >= pair {
		t.Errorf("LowDimsHigh: 4-d priority %g not below worst 2-d %g", quad, pair)
	}
}

func TestPrioritiesSpanBands(t *testing.T) {
	for _, mode := range []PriorityMode{HighDimsHigh, LowDimsHigh, UniformPriority} {
		w, err := Benchmark(BenchmarkConfig{NumQueries: 11, Dims: 4, Priority: mode, NewContract: c2})
		if err != nil {
			t.Fatal(err)
		}
		bands := map[string]int{}
		for _, q := range w.Queries {
			if q.Priority < 0 || q.Priority > 1 {
				t.Fatalf("priority %g outside [0,1]", q.Priority)
			}
			bands[PriorityBand(q.Priority)]++
		}
		for _, b := range []string{"HIGH", "MEDIUM", "LOW"} {
			if bands[b] == 0 {
				t.Errorf("mode %d: no %s-priority queries", mode, b)
			}
		}
	}
}

func TestPriorityModeFor(t *testing.T) {
	if PriorityModeFor("C1") != HighDimsHigh || PriorityModeFor("C2") != HighDimsHigh {
		t.Error("C1/C2 should use HighDimsHigh")
	}
	if PriorityModeFor("C3") != LowDimsHigh || PriorityModeFor("C4") != LowDimsHigh {
		t.Error("C3/C4 should use LowDimsHigh")
	}
	if PriorityModeFor("C5") != UniformPriority {
		t.Error("C5 should use UniformPriority")
	}
}

func TestSingleQueryPriority(t *testing.T) {
	w, err := Benchmark(BenchmarkConfig{NumQueries: 1, Dims: 4, Priority: HighDimsHigh, NewContract: c2})
	if err != nil {
		t.Fatal(err)
	}
	if b := PriorityBand(w.Queries[0].Priority); b != "HIGH" {
		t.Errorf("single query priority band = %s", b)
	}
}
