package caqe_test

import (
	"bytes"
	"testing"

	"caqe"
	"caqe/internal/join"
	"caqe/internal/trace"
)

// TestTracingByteIdentical is the zero-overhead contract of the trace
// layer: for every strategy, distribution and worker count, a run with a
// JSONL tracer attached must reproduce the untraced report exactly —
// results, emission order, virtual timestamps, counters and end time.
// Along the way every emitted event must validate against the schema and
// reconcile with the report it describes.
func TestTracingByteIdentical(t *testing.T) {
	defer func(v int) { join.ParallelProbeCutoff = v }(join.ParallelProbeCutoff)
	join.ParallelProbeCutoff = 1

	dists := []struct {
		name string
		d    caqe.Distribution
	}{
		{"correlated", caqe.Correlated},
		{"independent", caqe.Independent},
		{"anticorrelated", caqe.AntiCorrelated},
	}
	w := determinismWorkload()
	for _, dist := range dists {
		t.Run(dist.name, func(t *testing.T) {
			r, tt, err := caqe.GeneratePair(400, 3, dist.d, []float64{0.05, 0.05}, 7)
			if err != nil {
				t.Fatal(err)
			}
			totals, err := caqe.GroundTruth(w, r, tt)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range caqe.StrategyNames() {
				for _, workers := range []int{1, 4} {
					t.Run(string(name)+"/w"+string(rune('0'+workers)), func(t *testing.T) {
						plain, err := caqe.RunStrategy(name, w, r, tt,
							caqe.WithTotals(totals), caqe.WithWorkers(workers))
						if err != nil {
							t.Fatal(err)
						}
						var buf bytes.Buffer
						jw := caqe.NewJSONLTracer(&buf)
						traced, err := caqe.RunStrategy(name, w, r, tt,
							caqe.WithTotals(totals), caqe.WithWorkers(workers), caqe.WithTracer(jw))
						if err != nil {
							t.Fatal(err)
						}
						if err := jw.Flush(); err != nil {
							t.Fatal(err)
						}
						requireIdenticalReports(t, plain, traced)
						events, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
						if err != nil {
							t.Fatalf("trace stream invalid: %v", err)
						}
						checkTraceInvariants(t, string(name), traced, events)
					})
				}
			}
		})
	}
}

// checkTraceInvariants reconciles an event stream with the report of the
// run that produced it.
func checkTraceInvariants(t *testing.T, name string, rep *caqe.Report, events []trace.Event) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("tracer saw no events")
	}
	kinds := make(map[trace.Kind]int)
	emitted := 0
	for _, ev := range events {
		if ev.Strategy != name {
			t.Fatalf("event %d labeled %q, want %q", ev.Seq, ev.Strategy, name)
		}
		kinds[ev.Kind]++
		if ev.Kind == trace.KindEmit {
			emitted += ev.Count
		}
	}
	if kinds[trace.KindStart] != 1 || kinds[trace.KindEnd] != 1 {
		t.Fatalf("want exactly one start and one end event, got %d / %d",
			kinds[trace.KindStart], kinds[trace.KindEnd])
	}
	if first, last := events[0], events[len(events)-1]; first.Kind != trace.KindStart || last.Kind != trace.KindEnd {
		t.Fatalf("stream brackets: first %s, last %s", first.Kind, last.Kind)
	}
	total := 0
	for _, ems := range rep.PerQuery {
		total += len(ems)
	}
	if emitted != total {
		t.Fatalf("emit batches cover %d results, report delivered %d", emitted, total)
	}
	if kinds[trace.KindDecision] == 0 {
		t.Fatal("no decision events")
	}
	end := events[len(events)-1]
	if end.Counters == nil {
		t.Fatal("end event carries no counters")
	}
	if *end.Counters != rep.Counters {
		t.Fatalf("end counters %+v differ from report %+v", *end.Counters, rep.Counters)
	}
	if end.EndTime != rep.EndTime {
		t.Fatalf("end time %v vs report %v", end.EndTime, rep.EndTime)
	}
	// The core engine traces exactly one decision per region processed at
	// tuple level; the per-query baselines and ProgXe+ add query grants on
	// top, so equality holds only for the pure region schedulers.
	if name == "CAQE" || name == "S-JFSL" {
		if int64(kinds[trace.KindDecision]) != rep.Counters.RegionsDone {
			t.Fatalf("%d decision events for %d processed regions",
				kinds[trace.KindDecision], rep.Counters.RegionsDone)
		}
	}
}

// TestTraceAggregatorIntegration attaches the in-memory aggregator through
// the public API (fanned out alongside a JSONL sink) and checks the
// archived snapshot reconciles with the report.
func TestTraceAggregatorIntegration(t *testing.T) {
	w := determinismWorkload()
	r, tt, err := caqe.GeneratePair(300, 3, caqe.Independent, []float64{0.05, 0.05}, 3)
	if err != nil {
		t.Fatal(err)
	}
	totals, err := caqe.GroundTruth(w, r, tt)
	if err != nil {
		t.Fatal(err)
	}
	agg := caqe.NewTraceAggregator(w, totals)
	var buf bytes.Buffer
	jw := caqe.NewJSONLTracer(&buf)
	rep, err := caqe.Run(w, r, tt, caqe.WithTotals(totals), caqe.WithTracer(caqe.MultiTracer(agg, jw)))
	if err != nil {
		t.Fatal(err)
	}
	runs := agg.Runs()
	if len(runs) != 1 {
		t.Fatalf("aggregator archived %d runs", len(runs))
	}
	snap := runs[0]
	if snap.Strategy != "CAQE" || snap.EndTime != rep.EndTime {
		t.Fatalf("snapshot %q end %v, report end %v", snap.Strategy, snap.EndTime, rep.EndTime)
	}
	for qi, ems := range rep.PerQuery {
		if snap.Delivered[qi] != int64(len(ems)) {
			t.Fatalf("query %d: aggregator saw %d deliveries, report has %d",
				qi, snap.Delivered[qi], len(ems))
		}
	}
	if buf.Len() == 0 {
		t.Fatal("JSONL sink saw nothing through MultiTracer")
	}
}

// TestDeprecatedEntryPointsEquivalent pins the compatibility contract of
// the API redesign: the deprecated struct-options wrappers must produce
// reports byte-identical to the variadic entry points they forward to.
func TestDeprecatedEntryPointsEquivalent(t *testing.T) {
	r, tt, err := caqe.GeneratePair(300, 3, caqe.AntiCorrelated, []float64{0.05}, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := &caqe.TopKWorkload{
		JoinConds: []caqe.EquiJoin{{Name: "JC1", LeftKey: 0, RightKey: 0}},
		OutDims:   []caqe.MapFunc{caqe.SumDim("x", 0), caqe.SumDim("y", 1), caqe.SumDim("z", 2)},
		Queries: []caqe.TopKQuery{
			{Name: "K1", JC: 0, Weights: []float64{1, 1, 0}, K: 8, Priority: 0.8, Contract: caqe.Deadline(80)},
			{Name: "K2", JC: 0, Weights: []float64{0, 1, 2}, K: 5, Priority: 0.4, Contract: caqe.LogDecay()},
		},
	}
	totals := []int{8, 5}

	//lint:ignore SA1019 this test pins the deprecated wrappers to the new API
	oldRun, err := caqe.RunTopKWithOptions(w, r, tt, caqe.TopKOptions{Workers: 2, DataOrder: true}, totals)
	if err != nil {
		t.Fatal(err)
	}
	newRun, err := caqe.RunTopK(w, r, tt,
		caqe.Options{Workers: 2, DataOrderScheduling: true}, caqe.WithTotals(totals))
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalReports(t, oldRun, newRun)

	//lint:ignore SA1019 this test pins the deprecated wrappers to the new API
	oldSeq, err := caqe.RunTopKSequentialWithTotals(w, r, tt, totals)
	if err != nil {
		t.Fatal(err)
	}
	newSeq, err := caqe.RunTopKSequential(w, r, tt, caqe.WithTotals(totals))
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalReports(t, oldSeq, newSeq)

	// Legacy struct-options call sites passed nil totals positionally; the
	// variadic entry points must tolerate a literal nil option.
	if _, err := caqe.RunTopK(w, r, tt, nil); err != nil {
		t.Fatalf("nil RunOption rejected: %v", err)
	}
}

// TestStrategyNameConstants pins the typed names to the strategy table.
func TestStrategyNameConstants(t *testing.T) {
	want := []caqe.StrategyName{
		caqe.StrategyCAQE, caqe.StrategySJFSL, caqe.StrategyJFSL,
		caqe.StrategyProgXePlus, caqe.StrategySSMJ, caqe.StrategyTimeShared,
	}
	got := caqe.StrategyNames()
	if len(got) != len(want) {
		t.Fatalf("StrategyNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StrategyNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := caqe.RunStrategy("bogus", nil, nil, nil); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}
